package parcc

import (
	"fmt"
	"io"
	"sort"
	"time"

	"parcc/internal/obs"
)

// Trace is the structured observation of one solver operation, populated
// when Options.Trace is set.  It is the external form of the
// internal/obs.Recorder the solve paths write into: per-phase wall times
// with stable names, the kernel counters (CAS attempts vs. successful
// hooks, FLS phase and LTZ round counts), the sampling fast path's probe
// signals, the auto dispatcher's decision with the plan statistics that
// drove it, and — for the live-update path — the batch shape of the
// incremental operation.
//
// A Trace is immutable once returned: Result.Trace and Solver.LastTrace
// hand out a freshly built value per traced operation, safe to retain and
// read concurrently with later solves.  With tracing off both are nil and
// the solve paths allocate nothing for it.
type Trace struct {
	// Op identifies the traced operation: "solve", "attach", "add-edges",
	// or "remove-edges".
	Op string `json:"op"`
	// Algorithm is the concrete algorithm that ran ("incremental" for the
	// live-update operations).
	Algorithm Algorithm `json:"algorithm"`
	// Total is the operation's wall time, validation included.
	Total time.Duration `json:"total_ns"`
	// Phases lists the per-phase wall times in execution order; phases
	// that did not run are omitted.  Interleaved stage loops (FLS
	// INTERWEAVE, the incremental splice) pool all iterations under one
	// phase name.
	Phases []TracePhase `json:"phases"`
	// CASAttempts counts Unite calls the kernels issued (edges that
	// survived every skip test); CASHooks counts the ones that actually
	// merged two sets.  The difference is the benign-race retry traffic.
	CASAttempts int64 `json:"cas_attempts"`
	CASHooks    int64 `json:"cas_hooks"`
	// SkipRatio mirrors Result.SkipRatio: the measured fraction of edges
	// the sampling fast path settled without a Unite.
	SkipRatio float64 `json:"skip_ratio"`
	// SkipEstimate is the probe's prediction (the value the FLS-fallback
	// threshold compared against); SampledCoverage is the majority vote's
	// coverage estimate; MajorityMode reports whether the skip pass ran in
	// majority mode (vertex-wholesale skips) or direction-filtered mode.
	SkipEstimate    float64 `json:"skip_estimate"`
	SampledCoverage float64 `json:"sampled_coverage"`
	MajorityMode    bool    `json:"majority_mode"`
	// FLSPhases mirrors Result.Phases: INTERWEAVE phases executed.
	FLSPhases int `json:"fls_phases"`
	// LTZRounds counts EXPAND-MAXLINK rounds across every LTZ invocation
	// of the operation (interweave Step 3, REMAIN, backstops, ltz proper).
	LTZRounds int64 `json:"ltz_rounds"`
	// Dispatch records the auto dispatcher's decision; nil unless the
	// operation ran with Options.Algorithm Auto.
	Dispatch *DispatchDecision `json:"dispatch,omitempty"`
	// Frontier records the frontier engine's round structure; nil unless
	// the operation ran the frontier kernels.
	Frontier *TraceFrontier `json:"frontier,omitempty"`
	// Incremental records the batch shape of a live-update operation; nil
	// for plain solves.
	Incremental *TraceIncremental `json:"incremental,omitempty"`
}

// TracePhase is one phase span of a Trace.
type TracePhase struct {
	Name string        `json:"name"`
	Wall time.Duration `json:"wall_ns"`
}

// DispatchDecision is the auto dispatcher's verdict and its inputs.
type DispatchDecision struct {
	// Chosen is the concrete algorithm selected (equals the owning
	// Result.Algorithm — the golden contract the dispatch tests pin).
	Chosen Algorithm `json:"chosen"`
	// Rule names the decision-table row that fired: "tiny" (sequential
	// union-find), "dense" (sample on average degree alone), "skewed"
	// (sample on the plan's max-degree refinement), or "sparse" (cas).
	Rule string `json:"rule"`
	// N, M, AvgDeg are the O(1) statistics every decision starts from.
	N      int     `json:"n"`
	M      int     `json:"m"`
	AvgDeg float64 `json:"avg_deg"`
	// MaxDeg is the plan's exact maximum degree — consulted (and nonzero)
	// only in the bands that build/validate the plan to refine the call.
	MaxDeg int `json:"max_deg,omitempty"`
	// Locality is the sampled edge-locality statistic the mesh rule
	// measured (fraction of edges with id-close endpoints); −1 when the
	// decision never computed it.
	Locality float64 `json:"locality,omitempty"`
}

// TraceFrontier is the round structure of a frontier-engine operation.
type TraceFrontier struct {
	// Rounds is the exact number of rounds executed; Occupancy holds the
	// per-round active-vertex counts of the first obs.MaxFrontierRounds of
	// them, and Dense whether each of those rounds iterated the dense
	// bitmap representation (false: the sparse compacted list).
	Rounds    int     `json:"rounds"`
	Occupancy []int64 `json:"occupancy"`
	Dense     []bool  `json:"dense"`
	// Inspected counts adjacency entries the kernels examined — the
	// work ∝ frontier measure; compare against rounds × 2m, what a dense
	// round structure would have read.  Lowered counts successful label
	// CASes; Switches the dense↔sparse representation changes.
	Inspected int64 `json:"inspected"`
	Lowered   int64 `json:"lowered"`
	Switches  int   `json:"switches"`
}

// TraceIncremental is the batch shape of a traced live-update operation.
type TraceIncremental struct {
	// BatchEdges is the number of edges in the applied batch.
	BatchEdges int64 `json:"batch_edges"`
	// DirtyComponents counts the components a deletion batch touched.
	DirtyComponents int64 `json:"dirty_components,omitempty"`
	// ScopedVertices/ScopedEdges size the induced dirty subgraph the
	// deletion path re-solved.
	ScopedVertices int64 `json:"scoped_vertices,omitempty"`
	ScopedEdges    int64 `json:"scoped_edges,omitempty"`
	// Forest-path deletion counters (zero when Options.NoForest): deleted
	// forest vs non-forest edges, replacement promotions, true splits,
	// adjacency entries the searches scanned, and searches that blew the
	// budget into the scoped fallback.
	ForestDeletes    int64 `json:"forest_deletes,omitempty"`
	NonForestDeletes int64 `json:"non_forest_deletes,omitempty"`
	Replacements     int64 `json:"replacements,omitempty"`
	Splits           int64 `json:"splits,omitempty"`
	ReplaceScans     int64 `json:"replace_scans,omitempty"`
	BudgetFallbacks  int64 `json:"budget_fallbacks,omitempty"`
}

// PhaseSum returns the sum of the phase wall times — with tracing on, the
// instrumented paths keep it within a few percent of Total (the remainder
// is lock acquisition and the machine's bookkeeping).  One exception: a
// "remove-edges" trace's "scoped" span pools the dirty-subgraph re-solve
// whose own phases are listed alongside it, so summing over such a trace
// counts that time twice.
func (t *Trace) PhaseSum() time.Duration {
	var sum time.Duration
	for _, ph := range t.Phases {
		sum += ph.Wall
	}
	return sum
}

// Phase returns the wall time of the named phase (0 when it did not run).
func (t *Trace) Phase(name string) time.Duration {
	for _, ph := range t.Phases {
		if ph.Name == name {
			return ph.Wall
		}
	}
	return 0
}

// WriteText pretty-prints the trace as the phase-breakdown table ccrun
// -trace shows: one line per phase with wall time and share of the total,
// then the counters and signals that were set.
func (t *Trace) WriteText(w io.Writer) {
	fmt.Fprintf(w, "trace: op=%s algorithm=%s total=%v\n", t.Op, t.Algorithm, t.Total)
	byWall := append([]TracePhase(nil), t.Phases...)
	sort.SliceStable(byWall, func(i, j int) bool { return byWall[i].Wall > byWall[j].Wall })
	for _, ph := range byWall {
		share := 0.0
		if t.Total > 0 {
			share = 100 * float64(ph.Wall) / float64(t.Total)
		}
		fmt.Fprintf(w, "  %-12s %12v  %5.1f%%\n", ph.Name, ph.Wall, share)
	}
	if t.CASAttempts > 0 {
		fmt.Fprintf(w, "  cas: attempts=%d hooks=%d\n", t.CASAttempts, t.CASHooks)
	}
	if t.Algorithm == Sample {
		fmt.Fprintf(w, "  sample: skip=%.3f estimate=%.3f coverage=%.3f majority=%v\n",
			t.SkipRatio, t.SkipEstimate, t.SampledCoverage, t.MajorityMode)
	}
	if t.FLSPhases > 0 {
		fmt.Fprintf(w, "  fls: phases=%d\n", t.FLSPhases)
	}
	if t.LTZRounds > 0 {
		fmt.Fprintf(w, "  ltz: rounds=%d\n", t.LTZRounds)
	}
	if d := t.Dispatch; d != nil {
		fmt.Fprintf(w, "  dispatch: %s (rule=%s n=%d m=%d avg-deg=%.2f", d.Chosen, d.Rule, d.N, d.M, d.AvgDeg)
		if d.MaxDeg > 0 {
			fmt.Fprintf(w, " max-deg=%d", d.MaxDeg)
		}
		if d.Locality >= 0 {
			fmt.Fprintf(w, " locality=%.2f", d.Locality)
		}
		fmt.Fprintln(w, ")")
	}
	if f := t.Frontier; f != nil {
		fmt.Fprintf(w, "  frontier: rounds=%d inspected=%d lowered=%d switches=%d\n",
			f.Rounds, f.Inspected, f.Lowered, f.Switches)
		for i, occ := range f.Occupancy {
			rep := "sparse"
			if f.Dense[i] {
				rep = "dense"
			}
			fmt.Fprintf(w, "    round %2d  %-6s  occupancy=%d\n", i+1, rep, occ)
		}
		if f.Rounds > len(f.Occupancy) {
			fmt.Fprintf(w, "    ... %d more rounds (occupancy record capped at %d)\n",
				f.Rounds-len(f.Occupancy), len(f.Occupancy))
		}
	}
	if inc := t.Incremental; inc != nil {
		fmt.Fprintf(w, "  incremental: batch=%d", inc.BatchEdges)
		if inc.DirtyComponents > 0 {
			fmt.Fprintf(w, " dirty=%d scoped=%dv/%de",
				inc.DirtyComponents, inc.ScopedVertices, inc.ScopedEdges)
		}
		fmt.Fprintln(w)
		if inc.ForestDeletes+inc.NonForestDeletes > 0 {
			fmt.Fprintf(w, "  forest: deletes=%d non-forest=%d replaced=%d splits=%d scans=%d fallbacks=%d\n",
				inc.ForestDeletes, inc.NonForestDeletes, inc.Replacements,
				inc.Splits, inc.ReplaceScans, inc.BudgetFallbacks)
		}
	}
}

// traceFromRecorder converts the recorder's accumulated state into the
// external Trace form.  Callers hold s.mu (the recorder is quiescent).
func traceFromRecorder(rec *obs.Recorder, op string, algo Algorithm, total time.Duration) *Trace {
	tr := &Trace{Op: op, Algorithm: algo, Total: total}
	for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
		if d := rec.PhaseNanos(ph); d > 0 {
			tr.Phases = append(tr.Phases, TracePhase{Name: ph.String(), Wall: d})
		}
	}
	tr.CASAttempts = rec.Count(obs.CtrCASAttempts)
	tr.CASHooks = rec.Count(obs.CtrCASHooks)
	tr.FLSPhases = int(rec.Count(obs.CtrFLSPhases))
	tr.LTZRounds = rec.Count(obs.CtrLTZRounds)
	tr.SkipEstimate = obs.FromPPM(rec.Gauge(obs.GaugeSkipEstPPM))
	tr.SampledCoverage = obs.FromPPM(rec.Gauge(obs.GaugeCoverPPM))
	tr.MajorityMode = rec.Gauge(obs.GaugeMajorityMode) != 0
	if rounds := rec.Count(obs.CtrFrontierRounds); rounds > 0 {
		f := &TraceFrontier{
			Rounds:    int(rounds),
			Inspected: rec.Count(obs.CtrFrontierInspected),
			Lowered:   rec.Count(obs.CtrFrontierLowered),
			Switches:  int(rec.Count(obs.CtrFrontierSwitches)),
		}
		kept := rec.FrontierRounds()
		f.Occupancy = make([]int64, kept)
		f.Dense = make([]bool, kept)
		for i := 0; i < kept; i++ {
			f.Occupancy[i], f.Dense[i] = rec.FrontierRound(i)
		}
		tr.Frontier = f
	}
	return tr
}

// incTraceFromRecorder adds the batch-shape counters to a traceFromRecorder
// conversion for the live-update operations.
func incTraceFromRecorder(rec *obs.Recorder, op string, total time.Duration) *Trace {
	tr := traceFromRecorder(rec, op, Incremental, total)
	tr.Incremental = &TraceIncremental{
		BatchEdges:       rec.Count(obs.CtrBatchEdges),
		DirtyComponents:  rec.Count(obs.CtrDirtyComponents),
		ScopedVertices:   rec.Count(obs.CtrScopedVertices),
		ScopedEdges:      rec.Count(obs.CtrScopedEdges),
		ForestDeletes:    rec.Count(obs.CtrForestDeletes),
		NonForestDeletes: rec.Count(obs.CtrNonForestDeletes),
		Replacements:     rec.Count(obs.CtrReplacements),
		Splits:           rec.Count(obs.CtrSplits),
		ReplaceScans:     rec.Count(obs.CtrReplaceScans),
		BudgetFallbacks:  rec.Count(obs.CtrBudgetFallbacks),
	}
	return tr
}

// LastTrace returns the Trace of the most recent traced operation on this
// solver — the last Solve/SolveInto, Attach, AddEdges, or RemoveEdges —
// or nil when tracing is off (Options.Trace unset) or nothing has run yet.
// The returned Trace is immutable; the serving layer's per-graph trace
// endpoint reads it concurrently with later operations.
func (s *Solver) LastTrace() *Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastTrace
}
