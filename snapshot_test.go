package parcc

import (
	"errors"
	"sync"
	"testing"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// TestErrorTaxonomy pins the typed errors of the session and incremental
// API: every failure mode is a sentinel or a typed error the caller can
// dispatch on with errors.Is / errors.As — never an ad-hoc string.
func TestErrorTaxonomy(t *testing.T) {
	if _, err := ConnectedComponents(nil, nil); !errors.Is(err, ErrNilGraph) {
		t.Fatalf("ConnectedComponents(nil) = %v, want ErrNilGraph", err)
	}
	// Negative parallelism is a caller bug: a typed rejection, not a
	// silent clamp (zero still means "use the default").
	var pe *ProcsRangeError
	if _, err := NewSolver(&Options{Procs: -2}); !errors.As(err, &pe) {
		t.Fatalf("NewSolver(Procs: -2) = %v, want *ProcsRangeError", err)
	} else if pe.Procs != -2 {
		t.Fatalf("ProcsRangeError carries %d, want -2", pe.Procs)
	}
	if _, err := ConnectedComponents(gen.Path(3), &Options{Procs: -1}); !errors.As(err, &pe) {
		t.Fatalf("ConnectedComponents(Procs: -1) = %v, want *ProcsRangeError", err)
	}
	if s, err := NewSolver(&Options{Procs: 0}); err != nil {
		t.Fatalf("Procs: 0 must stay the defaulted happy path, got %v", err)
	} else {
		s.Close()
	}

	s, err := NewSolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Attach(nil); !errors.Is(err, ErrNilGraph) {
		t.Fatalf("Attach(nil) = %v, want ErrNilGraph", err)
	}
	// Every incremental entry point before Attach: ErrNotAttached.
	if err := s.AddEdges([]Edge{{U: 0, V: 1}}); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("AddEdges unattached = %v, want ErrNotAttached", err)
	}
	if err := s.RemoveEdges([]Edge{{U: 0, V: 1}}); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("RemoveEdges unattached = %v, want ErrNotAttached", err)
	}
	if _, err := s.Components(); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("Components unattached = %v, want ErrNotAttached", err)
	}
	if err := s.ComponentsInto(&Result{}); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("ComponentsInto unattached = %v, want ErrNotAttached", err)
	}
	if _, err := s.PublishSnapshot(); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("PublishSnapshot unattached = %v, want ErrNotAttached", err)
	}

	if err := s.Attach(gen.Path(4)); err != nil {
		t.Fatal(err)
	}
	// Out-of-range endpoints carry the edge and the bound.
	var re *EdgeRangeError
	if err := s.AddEdges([]Edge{{U: 1, V: 9}}); !errors.As(err, &re) {
		t.Fatalf("AddEdges out-of-range = %v, want *EdgeRangeError", err)
	} else if re.Edge.V != 9 || re.N != 4 {
		t.Fatalf("EdgeRangeError carries (%d,%d)/%d, want (1,9)/4", re.Edge.U, re.Edge.V, re.N)
	}
	if err := s.RemoveEdges([]Edge{{U: 0, V: 9}}); !errors.As(err, &re) {
		t.Fatalf("RemoveEdges out-of-range = %v, want *EdgeRangeError", err)
	}
	// Removing more occurrences than the multiset holds: MissingEdgeError
	// with the shortfall, and no mutation.
	var me *MissingEdgeError
	if err := s.RemoveEdges([]Edge{{U: 0, V: 2}, {U: 0, V: 1}}); !errors.As(err, &me) {
		t.Fatalf("RemoveEdges missing = %v, want *MissingEdgeError", err)
	} else if me.Count != 1 {
		t.Fatalf("MissingEdgeError.Count = %d, want 1", me.Count)
	}
	if s.Live().M() != 3 {
		t.Fatalf("failed remove mutated the live graph: m=%d, want 3", s.Live().M())
	}

	// Closed solver: ErrSolverClosed from the whole surface — including
	// ComponentsInto after a RemoveEdges-bearing session (the exact
	// sequence that used to yield an untyped string).
	if err := s.RemoveEdges([]Edge{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.ComponentsInto(&Result{}); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("ComponentsInto closed = %v, want ErrSolverClosed", err)
	}
	if err := s.SolveInto(gen.Path(3), &Result{}); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("SolveInto closed = %v, want ErrSolverClosed", err)
	}
	if err := s.AddEdges([]Edge{{U: 0, V: 1}}); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("AddEdges closed = %v, want ErrSolverClosed", err)
	}
	if err := s.Attach(gen.Path(3)); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("Attach closed = %v, want ErrSolverClosed", err)
	}
	if _, err := s.PublishSnapshot(); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("PublishSnapshot closed = %v, want ErrSolverClosed", err)
	}
}

// TestSnapshotPublishAndReadView drives a live session through publishes,
// mutations, and a re-attach, asserting the snapshot semantics: immutable
// views, monotone versions, point queries consistent with the partition,
// and the unpublish on Attach.
func TestSnapshotPublishAndReadView(t *testing.T) {
	s, err := NewSolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if s.ReadView() != nil {
		t.Fatal("ReadView before any publish must be nil")
	}
	if err := s.Attach(gen.Path(6)); err != nil { // 0-1-2-3-4-5
		t.Fatal(err)
	}
	if s.ReadView() != nil {
		t.Fatal("Attach must not publish implicitly")
	}

	sn1, err := s.PublishSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ReadView(); got != sn1 {
		t.Fatalf("ReadView = %p, want the published snapshot %p", got, sn1)
	}
	if sn1.Version() != 1 || sn1.N() != 6 || sn1.NumComponents() != 1 {
		t.Fatalf("snapshot 1: version=%d n=%d comps=%d", sn1.Version(), sn1.N(), sn1.NumComponents())
	}
	if !sn1.Connected(0, 5) || sn1.ComponentSize(3) != 6 {
		t.Fatal("snapshot 1 must see the connected path")
	}
	checkSnapshotAgainstLive(t, s, sn1)

	// Split the path: the published view is untouched (historically
	// valid), the next publish sees the split.
	if err := s.RemoveEdges([]Edge{{U: 2, V: 3}}); err != nil {
		t.Fatal(err)
	}
	if got := s.ReadView(); got != sn1 || !got.Connected(0, 5) {
		t.Fatal("mutation must not alter the published snapshot")
	}
	sn2, err := s.PublishSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn2.Version() != 2 || sn2.NumComponents() != 2 {
		t.Fatalf("snapshot 2: version=%d comps=%d, want 2/2", sn2.Version(), sn2.NumComponents())
	}
	if sn2.Connected(0, 5) || !sn2.Connected(0, 2) || sn2.ComponentSize(4) != 3 {
		t.Fatal("snapshot 2 must see the split")
	}
	if sn2.ComponentOf(0) == sn2.ComponentOf(5) {
		t.Fatal("split endpoints must have distinct representatives")
	}
	checkSnapshotAgainstLive(t, s, sn2)

	// Rejoin through the CAS fast path (exercises the needsCompress →
	// flatten-before-publish branch).
	if err := s.AddEdges([]Edge{{U: 2, V: 3}}); err != nil {
		t.Fatal(err)
	}
	sn3, err := s.PublishSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn3.Version() != 3 || sn3.NumComponents() != 1 || !sn3.Connected(0, 5) {
		t.Fatalf("snapshot 3: version=%d comps=%d", sn3.Version(), sn3.NumComponents())
	}
	checkSnapshotAgainstLive(t, s, sn3)

	// Re-attach: unpublished, but the version counter keeps running.
	if err := s.Attach(gen.TwoCycles(8)); err != nil {
		t.Fatal(err)
	}
	if s.ReadView() != nil {
		t.Fatal("Attach must unpublish the previous graph's snapshot")
	}
	sn4, err := s.PublishSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn4.Version() != 4 || sn4.NumComponents() != 2 {
		t.Fatalf("snapshot 4: version=%d comps=%d, want 4/2", sn4.Version(), sn4.NumComponents())
	}
	checkSnapshotAgainstLive(t, s, sn4)
}

// checkSnapshotAgainstLive asserts a snapshot is exactly the partition of
// the solver's live graph (BFS referee), with exact per-component sizes.
func checkSnapshotAgainstLive(t *testing.T, s *Solver, sn *Snapshot) {
	t.Helper()
	want := baseline.BFSLabels(s.Live())
	if !graph.SamePartition(want, sn.Labels()) {
		t.Fatal("snapshot partition diverges from a from-scratch solve of the live graph")
	}
	count := map[int32]int{}
	for _, l := range sn.Labels() {
		count[l]++
	}
	if len(count) != sn.NumComponents() {
		t.Fatalf("snapshot has %d distinct labels but claims %d components",
			len(count), sn.NumComponents())
	}
	for v := 0; v < sn.N(); v++ {
		if sn.ComponentSize(v) != count[sn.ComponentOf(v)] {
			t.Fatalf("ComponentSize(%d) = %d, want %d", v, sn.ComponentSize(v), count[sn.ComponentOf(v)])
		}
	}
}

// TestSnapshotLockFreeReaders runs readers against a mutating writer on
// one Solver: every ReadView must be internally consistent (label-derived
// component count and sizes match the snapshot's own claims) — the
// immutability contract under -race.
func TestSnapshotLockFreeReaders(t *testing.T) {
	s, err := NewSolver(&Options{Backend: BackendConcurrent, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := 256
	if err := s.Attach(gen.Cycle(n)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PublishSnapshot(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.ReadView()
				count := map[int32]int{}
				for _, l := range sn.Labels() {
					count[l]++
				}
				if len(count) != sn.NumComponents() {
					t.Errorf("torn snapshot: %d labels vs %d components", len(count), sn.NumComponents())
					return
				}
				for v := 0; v < sn.N(); v += 17 {
					if sn.ComponentSize(v) != count[sn.ComponentOf(v)] {
						t.Errorf("torn snapshot: size mismatch at %d", v)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		e := Edge{U: int32(i % n), V: int32((i * 7) % n)}
		if err := s.AddEdges([]Edge{e}); err != nil {
			t.Error(err)
			break
		}
		if _, err := s.PublishSnapshot(); err != nil {
			t.Error(err)
			break
		}
		if err := s.RemoveEdges([]Edge{e}); err != nil {
			t.Error(err)
			break
		}
		if _, err := s.PublishSnapshot(); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
