package parcc

import (
	"testing"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// TestSampleAutoEquivalenceAcrossFamilies is the cross-algorithm property
// suite for the sampling fast path: on every generator family and both
// backends, `sample` and `auto` must produce the same partition as the
// sequential cas baseline, which is itself checked against BFS ground
// truth.  Sample's labels are additionally pinned to cas's exactly — both
// converge to component minima under any schedule.
func TestSampleAutoEquivalenceAcrossFamilies(t *testing.T) {
	for name, g := range familyGraphs() {
		truth := mustLabels(t, g, &Options{Algorithm: BFS})
		casL := mustLabels(t, g, &Options{Algorithm: CASUnite, Backend: BackendSequential})
		if !graph.SamePartition(truth, casL) {
			t.Fatalf("%s: cas baseline wrong", name)
		}
		for _, backend := range []Backend{BackendSequential, BackendConcurrent} {
			opts := &Options{Algorithm: Sample, Backend: backend, Procs: 4, Seed: 5}
			res, err := ConnectedComponents(g, opts)
			if err != nil {
				t.Fatalf("%s/%s sample: %v", name, backend, err)
			}
			if !graph.SamePartition(casL, res.Labels) {
				t.Errorf("%s/%s: sample partition differs from cas", name, backend)
			}
			if res.Phases == 0 {
				// The skip pass ran: min-labels must match cas exactly.
				for v := range casL {
					if res.Labels[v] != casL[v] {
						t.Fatalf("%s/%s: sample label[%d]=%d, want min-label %d",
							name, backend, v, res.Labels[v], casL[v])
					}
				}
			}
			if res.SkipRatio < 0 || res.SkipRatio > 1 {
				t.Errorf("%s/%s: SkipRatio = %v outside [0,1]", name, backend, res.SkipRatio)
			}
			auto, err := ConnectedComponents(g, &Options{Algorithm: Auto, Backend: backend, Procs: 4, Seed: 5})
			if err != nil {
				t.Fatalf("%s/%s auto: %v", name, backend, err)
			}
			if !graph.SamePartition(casL, auto.Labels) {
				t.Errorf("%s/%s: auto partition differs from cas", name, backend)
			}
			switch auto.Algorithm {
			case UnionFind, CASUnite, Sample, Frontier:
			default:
				t.Errorf("%s/%s: auto recorded %q, want a concrete dispatch decision",
					name, backend, auto.Algorithm)
			}
		}
	}
}

// TestAutoDecisionRecorded pins the dispatch table's four regimes on
// representative shapes: tiny → sequential union-find, dense → sample,
// mesh (low-degree, id-local) → frontier, random-sparse → cas.
func TestAutoDecisionRecorded(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want Algorithm
	}{
		{"tiny", gen.Path(50), UnionFind},
		{"dense", gen.GNM(4096, 1<<16, 3), Sample},
		{"mesh", gen.Path(1 << 13), Frontier},
		{"sparse", gen.GNM(1<<13, 1<<13, 3), CASUnite},
	}
	for _, c := range cases {
		res, err := ConnectedComponents(c.g, &Options{Algorithm: Auto})
		if err != nil {
			t.Fatal(err)
		}
		if res.Algorithm != c.want {
			t.Errorf("%s: auto picked %q, want %q", c.name, res.Algorithm, c.want)
		}
		if !Verify(c.g, res.Labels) {
			t.Errorf("%s: auto labels wrong", c.name)
		}
	}
}

// TestAutoStableAcrossPlanCaching: the dispatch decision may refine its
// average-degree estimate from the cached plan once the session holds one;
// the decision and the partition must stay consistent across that upgrade.
func TestAutoStableAcrossPlanCaching(t *testing.T) {
	g := gen.GNM(2000, 30000, 11) // avg deg 30: sample on either estimate
	s, err := NewSolver(&Options{Algorithm: Auto})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cold, err := s.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	s.Plan(g) // cache the CSR plan: the dispatcher now reads exact stats
	warm, err := s.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Algorithm != Sample || warm.Algorithm != cold.Algorithm {
		t.Fatalf("auto picked %q cold, %q warm; want %q on both", cold.Algorithm, warm.Algorithm, Sample)
	}
	if !graph.SamePartition(cold.Labels, warm.Labels) {
		t.Fatal("auto partitions diverged across plan caching")
	}
}

// TestSampleFallbackToFLS forces the skip-ratio fallback (by raising the
// threshold above 1) and checks the solve degrades to the full FLS
// pipeline — observable through Phases — with a correct partition and the
// failing probe estimate reported as the skip ratio.
func TestSampleFallbackToFLS(t *testing.T) {
	old := sampleFallbackSkip
	sampleFallbackSkip = 1.1
	defer func() { sampleFallbackSkip = old }()
	g := gen.GNM(2000, 6000, 7)
	res, err := ConnectedComponents(g, &Options{Algorithm: Sample, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases == 0 {
		t.Fatal("fallback solve must run the FLS pipeline (Phases > 0)")
	}
	if res.SkipRatio > 1 {
		t.Fatalf("fallback SkipRatio = %v, want the probe estimate ≤ 1", res.SkipRatio)
	}
	if !Verify(g, res.Labels) {
		t.Fatal("fallback labels wrong")
	}
}

// TestSampleIncrementalFastPaths drives Attach and a giant-component
// deletion over a graph large and dense enough to route both through the
// sampling fast path, asserting the partition and the maintained count
// against the from-scratch oracle after every step.  NoForest pins the
// scoped deletion machinery itself: with the forest on, these deletions
// resolve through the replacement search and never reach it.
func TestSampleIncrementalFastPaths(t *testing.T) {
	base := gen.GNM(1<<13, 1<<17, 9) // m ≥ sampleIncMinEdges, avg deg 32
	if !sampleWorthwhile(base) {
		t.Fatal("test graph must qualify for the sampling attach path")
	}
	s, err := NewSolver(&Options{Backend: BackendConcurrent, Procs: 4, Seed: 2, NoForest: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	oracle := baseline.NewIncOracle(base)
	if err := s.Attach(base.Clone()); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		res, err := s.Components()
		if err != nil {
			t.Fatal(err)
		}
		wantLabels := oracle.Labels()
		if !graph.SamePartition(wantLabels, res.Labels) {
			t.Fatalf("%s: partition differs from oracle", stage)
		}
		distinct := map[int32]bool{}
		for _, l := range wantLabels {
			distinct[l] = true
		}
		wantN := len(distinct)
		if res.NumComponents != wantN {
			t.Fatalf("%s: count = %d, want %d", stage, res.NumComponents, wantN)
		}
	}
	check("attach")

	// Delete edges inside the giant component: the dirty region is nearly
	// the whole (dense) graph, which is exactly the scoped re-solve the
	// sampling path accelerates.
	rm := []Edge{base.Edges[0], base.Edges[1], base.Edges[2]}
	if err := s.RemoveEdges(rm); err != nil {
		t.Fatal(err)
	}
	if err := oracle.RemoveEdges(rm); err != nil {
		t.Fatal(err)
	}
	check("scoped re-solve")

	add := []Edge{{U: 0, V: 1}, {U: 17, V: 4000}}
	if err := s.AddEdges(add); err != nil {
		t.Fatal(err)
	}
	if err := oracle.AddEdges(add); err != nil {
		t.Fatal(err)
	}
	check("insert after sample paths")
}
