package parcc

import (
	"testing"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// TestFrontierEquivalenceAcrossFamilies is the cross-algorithm property
// suite for the frontier engine: on every generator family and both
// backends, `frontier` must produce exactly the component-minima labels of
// the sequential cas baseline (itself checked against BFS ground truth) —
// not merely the same partition, since both converge to per-component
// minima under any schedule.
func TestFrontierEquivalenceAcrossFamilies(t *testing.T) {
	for name, g := range familyGraphs() {
		truth := mustLabels(t, g, &Options{Algorithm: BFS})
		casL := mustLabels(t, g, &Options{Algorithm: CASUnite, Backend: BackendSequential})
		if !graph.SamePartition(truth, casL) {
			t.Fatalf("%s: cas baseline wrong", name)
		}
		for _, backend := range []Backend{BackendSequential, BackendConcurrent} {
			res, err := ConnectedComponents(g, &Options{Algorithm: Frontier, Backend: backend, Procs: 4, Seed: 5})
			if err != nil {
				t.Fatalf("%s/%s frontier: %v", name, backend, err)
			}
			for v := range casL {
				if res.Labels[v] != casL[v] {
					t.Fatalf("%s/%s: frontier label[%d]=%d, want min-label %d",
						name, backend, v, res.Labels[v], casL[v])
				}
			}
			want := 0
			for v, l := range casL {
				if int32(v) == l {
					want++
				}
			}
			if res.NumComponents != want {
				t.Errorf("%s/%s: frontier counted %d components, want %d",
					name, backend, res.NumComponents, want)
			}
		}
	}
}

// TestFrontierMeshDispatch pins the auto dispatcher's mesh rule on the
// high-diameter lattice shapes the frontier engine targets: path, grid,
// and torus all dispatch to frontier under the "mesh" rule, with the
// measured edge locality recorded in the decision.
func TestFrontierMeshDispatch(t *testing.T) {
	sq := 1 << 7
	for _, c := range []struct {
		name string
		g    *Graph
	}{
		{"path", gen.Path(1 << 14)},
		{"grid", gen.Grid(sq, sq)},
		{"torus", gen.Torus(sq, sq)},
	} {
		s, err := NewSolver(&Options{Algorithm: Auto, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(c.g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Algorithm != Frontier {
			t.Errorf("%s: auto picked %q, want frontier", c.name, res.Algorithm)
		}
		d := res.Trace.Dispatch
		if d == nil || d.Rule != "mesh" {
			t.Fatalf("%s: dispatch = %+v, want rule mesh", c.name, d)
		}
		if d.Locality < frontierMeshLocality {
			t.Errorf("%s: recorded locality %.3f below the mesh threshold %.2f",
				c.name, d.Locality, frontierMeshLocality)
		}
		s.Close()
	}
}

// TestFrontierFewerInspections is the edge-inspection acceptance bar: on
// the high-diameter mesh families, the frontier engine must inspect
// strictly fewer edge endpoints than the dense round structure it
// replaces, which pays the full 2m every round.  The trace's occupancy
// series must also account for the frontier shrinking rather than staying
// at n.
func TestFrontierFewerInspections(t *testing.T) {
	sq := 1 << 7
	for _, c := range []struct {
		name string
		g    *Graph
	}{
		{"path", gen.Path(1 << 14)},
		{"grid", gen.Grid(sq, sq)},
		{"torus", gen.Torus(sq, sq)},
	} {
		res, err := ConnectedComponents(c.g, &Options{Algorithm: Frontier, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		f := res.Trace.Frontier
		if f == nil || f.Rounds < 2 {
			t.Fatalf("%s: traced frontier solve must record rounds, got %+v", c.name, f)
		}
		dense := int64(f.Rounds) * int64(2*c.g.M())
		if f.Inspected >= dense {
			t.Errorf("%s: frontier inspected %d edge endpoints over %d rounds, dense rounds would pay %d",
				c.name, f.Inspected, f.Rounds, dense)
		}
		var occ int64
		for _, o := range f.Occupancy {
			occ += o
		}
		if occ >= int64(f.Rounds)*int64(c.g.N) {
			t.Errorf("%s: occupancy sum %d never shrank below rounds×n = %d",
				c.name, occ, int64(f.Rounds)*int64(c.g.N))
		}
	}
}

// TestFrontierIncrementalPaths drives the incremental session over a mesh
// graph that qualifies for the frontier fast paths — Attach and the scoped
// re-solve of RemoveEdges both route through the frontier engine — and
// asserts the partition and maintained count against the from-scratch
// oracle after every step.  The traced AddEdges must record the batch's
// touched endpoints as the repair's seeded frontier.  NoForest pins the
// scoped deletion machinery itself: with the forest on, these deletions
// resolve through the replacement search and never reach it.
func TestFrontierIncrementalPaths(t *testing.T) {
	side := 128 // m = 2·side·(side−1) ≈ 2^15: past frontierIncMinEdges
	base := gen.Grid(side, side)
	if !frontierWorthwhile(base) {
		t.Fatal("test graph must qualify for the frontier attach path")
	}
	s, err := NewSolver(&Options{Backend: BackendConcurrent, Procs: 4, Seed: 2, Trace: true, NoForest: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	oracle := baseline.NewIncOracle(base)
	if err := s.Attach(base.Clone()); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		res, err := s.Components()
		if err != nil {
			t.Fatal(err)
		}
		wantLabels := oracle.Labels()
		if !graph.SamePartition(wantLabels, res.Labels) {
			t.Fatalf("%s: partition differs from oracle", stage)
		}
		distinct := map[int32]bool{}
		for _, l := range wantLabels {
			distinct[l] = true
		}
		if wantN := len(distinct); res.NumComponents != wantN {
			t.Fatalf("%s: count = %d, want %d", stage, res.NumComponents, wantN)
		}
	}
	check("attach")
	if tr := s.LastTrace(); tr == nil || tr.Frontier == nil || tr.Frontier.Rounds == 0 {
		t.Fatal("frontier attach must record frontier rounds in its trace")
	}

	// Cut a corner off the grid: the dirty region is the giant component,
	// still mesh-shaped, so the scoped re-solve takes the frontier branch.
	rm := []Edge{base.Edges[0], base.Edges[1], base.Edges[2]}
	if err := s.RemoveEdges(rm); err != nil {
		t.Fatal(err)
	}
	if err := oracle.RemoveEdges(rm); err != nil {
		t.Fatal(err)
	}
	check("scoped re-solve")
	if tr := s.LastTrace(); tr == nil || tr.Frontier == nil || tr.Frontier.Rounds == 0 {
		t.Fatal("frontier scoped re-solve must record frontier rounds in its trace")
	}

	add := []Edge{{U: 0, V: 1}, {U: 17, V: 4000}, {U: 17, V: 4000}}
	if err := s.AddEdges(add); err != nil {
		t.Fatal(err)
	}
	if err := oracle.AddEdges(add); err != nil {
		t.Fatal(err)
	}
	check("insert after frontier paths")
	tr := s.LastTrace()
	if tr == nil || tr.Frontier == nil || tr.Frontier.Rounds != 1 {
		t.Fatalf("add-edges trace = %+v, want one seeded frontier round", tr)
	}
	// Four distinct endpoints across the three batch edges (one duplicate
	// pair): the seeded frontier dedups.
	if tr.Frontier.Occupancy[0] != 4 || tr.Frontier.Dense[0] {
		t.Errorf("seeded frontier round = occ %d dense %v, want 4 sparse",
			tr.Frontier.Occupancy[0], tr.Frontier.Dense[0])
	}
}
