package parcc

import (
	"fmt"
	"time"

	"parcc/internal/core"
	"parcc/internal/dynconn"
	"parcc/internal/graph"
	"parcc/internal/obs"
	"parcc/internal/par"
)

// This file is the incremental-update subsystem on top of solver sessions:
// a Solver can hold a live graph (Attach) and keep its component partition
// current across batched mutations.  Insertions never look at the rest of
// the graph — AddEdges runs the batch through the lock-free CAS union-find
// (internal/par Unite), O(|batch|·α) amortized work, parallel over the
// batch on the session's runtime.  Deletions cannot be absorbed by a
// union-find, so RemoveEdges leans on the session's spanning forest
// (internal/dynconn): a deleted non-forest edge is O(1) — the partition
// cannot change — and a deleted forest edge runs a bounded smaller-side
// replacement search that either promotes a crossing edge or relabels the
// split-off side in place.  Only when a search blows its scan budget does
// the session fall back to the legacy scoped repair: mark the component
// dirty, re-solve the subgraph the dirty set induces with the paper's
// full CONNECTIVITY pipeline, and splice the scoped labels back
// (Options.NoForest forces this path for every deletion).
// Components/ComponentsInto re-query the live partition without solving
// anything.
//
// Liu–Tarjan's Simple Concurrent Connected Components Algorithms
// (arXiv:1812.06177) supplies the union-find machinery; the FLS pipeline
// remains the from-scratch engine the deletions fall back to.

// incSession is the live state behind Attach/AddEdges/RemoveEdges: the
// session-owned graph, the CAS union-find forest over it, and the
// maintained component count.  Guarded by the Solver's mutex.
type incSession struct {
	g      *graph.Graph
	parent []int32
	ncomp  int
	batch  uint64 // mutation-batch counter; perturbs scoped-solve seeds
	// needsCompress records whether successful unions may have left
	// non-root parent chains since the forest was last flattened, so a
	// read-heavy query stream pays the O(n) Compress once per mutation,
	// not once per query.
	needsCompress bool
	// forest is the spanning-forest dynamic connectivity state (nil when
	// Options.NoForest): the per-edge forest flags AddEdges maintains and
	// the replacement-search machinery RemoveEdges runs.
	forest *dynconn.Tracker
}

// Attach binds the solver to a live graph and computes its initial
// partition, making the incremental API (AddEdges, RemoveEdges,
// Components) available.  The solver takes ownership of g: mutate it only
// through the incremental API afterwards (Live returns it for read-only
// use).  Attaching again replaces the previous live graph.  The initial
// solve is uncharged CAS union-find work, parallel on the session's
// runtime — not a charged PRAM run: one O(m·α) Unite pass, or, for large
// dense graphs, the Afforest-style sampling fast path (sample a few
// neighbors per vertex, then skip the settled majority of the edge list).
func (s *Solver) Attach(g *Graph) error {
	if g == nil {
		return ErrNilGraph
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("parcc: %w", err)
	}
	var start time.Time
	if s.rec != nil {
		start = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSolverClosed
	}
	rec := s.rec
	rec.Reset()
	rec.Add(obs.CtrBatchEdges, int64(g.M()))
	e := s.casExec()
	p := make([]int32, g.N)
	var ncomp int
	var fr *dynconn.Tracker
	if frontierWorthwhile(g) {
		// Mesh-like attach (low average degree, id-local edges): the
		// frontier engine's asynchronous min-label propagation pays per
		// round only for the vertices still active, which on these shapes
		// shrinks fast — cheaper than a Unite per edge and identical in
		// output (component minima).  Same engine as the "frontier"
		// algorithm and the scoped re-solve below: one machinery for cold
		// solves and incremental repair.
		span := rec.Begin()
		plan := s.planFor(g)
		rec.End(obs.PhasePlan, span)
		p, ncomp = s.frontierLabelsInto(e, g, plan.CSR, p)
	} else if sampleWorthwhile(g) {
		// Large dense attach: the Afforest-style sampling fast path
		// settles most components from a few sampled neighbors per vertex
		// and then skips the settled majority of the edge list, instead
		// of paying a full Unite per edge.  The CSR it samples from is
		// built through the session's plan cache, so the subsequent
		// Solve/AddEdges traffic on the live graph starts warm.  The
		// partition is identical to the UniteBatch path (component
		// minima); the count is taken exactly, from the flattened roots.
		span := rec.Begin()
		plan := s.planFor(g)
		rec.End(obs.PhasePlan, span)
		p, ncomp = s.sampleLabelsInto(e, g, plan.CSR, p)
	} else {
		span := rec.Begin()
		e.Run(g.N, func(v int) { p[v] = int32(v) })
		var merges int
		if s.opt.NoForest {
			merges = par.UniteBatch(e, p, g.Edges)
		} else {
			// The same Unite pass, but reporting per-edge outcomes: the
			// winning edges are exactly the initial spanning forest.
			fr = dynconn.New()
			merges = par.UniteBatchMark(e, p, g.Edges, fr.Marks(g.M()))
		}
		rec.Add(obs.CtrCASAttempts, int64(g.M()))
		rec.Add(obs.CtrCASHooks, int64(merges))
		span = rec.Lap(obs.PhaseUnite, span)
		par.Compress(e, p)
		rec.End(obs.PhaseCompress, span)
		ncomp = g.N - merges
	}
	if !s.opt.NoForest {
		// Index the live multiset and install the forest flags.  The fast
		// attach paths label through kernels that do not report per-edge
		// merge outcomes, so they derive the flags with a scratch
		// union-find pass of their own; the plain path already has them.
		span := rec.Begin()
		if fr == nil {
			fr = dynconn.New()
			scratch := s.cx.Grab32(g.N)
			fr.BuildScratch(e, g, scratch)
			s.cx.Release32(scratch)
		} else {
			fr.Init(g)
		}
		rec.End(obs.PhaseUnite, span)
	}
	s.inc = &incSession{g: g, parent: p, ncomp: ncomp, forest: fr}
	// Unpublish: a snapshot of the previous live graph must not answer for
	// the new one.  The version counter keeps running, so a reader that
	// kept the old pointer can still tell the views apart.  The page
	// mirror is dropped with the old partition — the next publish full-
	// builds it for the new graph.
	s.snap.Store(nil)
	s.pages = nil
	if rec != nil {
		s.lastTrace = incTraceFromRecorder(rec, "attach", time.Since(start))
	}
	return nil
}

// Live returns the solver's attached graph (nil when no session is
// active).  The graph is owned by the solver: treat it as read-only and
// mutate only through AddEdges/RemoveEdges — it is safe to pass to
// Solve/SolveInto or the spectral estimators, which never modify it.
func (s *Solver) Live() *Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inc == nil {
		return nil
	}
	return s.inc.g
}

// AddEdges appends a batch of edges to the live graph and folds them into
// the partition: O(|batch|·α) amortized work on the session's runtime,
// independent of the size of the rest of the graph — the fast path of the
// incremental subsystem.  Self-loops and parallel edges are permitted
// (§2.1); endpoints must be in range.  On error the live state is
// unchanged.  Safe for concurrent callers (the session lock serializes all
// mutations and queries).
func (s *Solver) AddEdges(batch []Edge) error {
	var start time.Time
	if s.rec != nil {
		start = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	inc, err := s.incReady()
	if err != nil {
		return err
	}
	n := inc.g.N
	for _, e := range batch {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return &EdgeRangeError{Edge: e, N: n}
		}
	}
	if len(batch) == 0 {
		return nil
	}
	rec := s.rec
	rec.Reset()
	rec.Add(obs.CtrBatchEdges, int64(len(batch)))
	// The cached plan (if it covers the live graph) is now a strict prefix;
	// planFor extends it by delta on the next plan-consuming solve rather
	// than rebuilding — nothing to do eagerly, and the insert path stays
	// O(|batch|).
	span := rec.Begin()
	var merges int
	st := s.pages
	if fr := inc.forest; fr != nil {
		// Unite first, then register each edge with its outcome: a winning
		// edge united two components and joins the spanning forest, the
		// rest (loops, duplicates, intra-component edges) are non-forest.
		marks := fr.Marks(len(batch))
		if st != nil {
			merges = par.UniteBatchTouch(s.casExec(), inc.parent, batch, marks, st.loserBuf(len(batch)))
		} else {
			merges = par.UniteBatchMark(s.casExec(), inc.parent, batch, marks)
		}
		for i, ed := range batch {
			fr.DF.Insert(ed, marks[i])
		}
	} else {
		inc.g.Edges = append(inc.g.Edges, batch...)
		if st != nil {
			merges = par.UniteBatchTouch(s.casExec(), inc.parent, batch, nil, st.loserBuf(len(batch)))
		} else {
			merges = par.UniteBatch(s.casExec(), inc.parent, batch)
		}
	}
	if st != nil {
		// Feed the snapshot mirror: each losing root transfers its size to
		// its winner now (O(1)) and queues its member relabel for the next
		// publish's flush — the insert path stays O(|batch|·α).
		for _, ru := range st.losers[:merges] {
			st.noteMerge(inc.parent, ru)
		}
	}
	inc.batch++
	rec.End(obs.PhaseUnite, span)
	rec.Add(obs.CtrCASAttempts, int64(len(batch)))
	rec.Add(obs.CtrCASHooks, int64(merges))
	if rec != nil {
		// Seed the batch's touched endpoints into the session frontier and
		// record them as the repair's initial frontier — the same round
		// trace the frontier solves emit, so an insert stream's locality is
		// observable on one scale.  The flood itself stays with the
		// union-find above: propagating minima needs adjacency, and
		// extending the CSR costs O(n+m), which would break this path's
		// O(|batch|) contract — the union-find absorbs the merge in
		// O(|batch|·α) without ever looking at a neighbor list.
		cur, _ := s.frontierPair(n)
		cur.BeginCollect(true)
		for _, ed := range batch {
			cur.Add(ed.U)
			cur.Add(ed.V)
		}
		rec.RecordFrontierRound(cur.Count(), false)
		cur.Clear()
	}
	if merges > 0 {
		inc.ncomp -= merges
		// Only a winning hook can leave a chain; failed unites and finds
		// at most shorten paths.
		inc.needsCompress = true
	}
	if rec != nil {
		s.lastTrace = incTraceFromRecorder(rec, "add-edges", time.Since(start))
	}
	return nil
}

// RemoveEdges deletes one occurrence per batch entry from the live graph
// (either orientation of an undirected edge matches) and repairs the
// partition.  With the spanning forest maintained (the default), each
// deletion resolves through the forest flags: a non-forest occurrence is
// removed in O(1) — the partition provably cannot change — and a forest
// occurrence runs a budget-bounded smaller-side replacement search
// (par.ReplacementSearch) that either promotes a crossing edge into the
// forest or relabels the split-off side in place.  Only a search that
// blows its budget falls back to the legacy scoped repair: the component
// is marked dirty, the subgraph the dirty set induces is re-solved with
// the paper's CONNECTIVITY pipeline (charged O(m'+n') on that subgraph)
// and spliced back, and the region's forest flags are re-derived.  With
// Options.NoForest every deletion takes the scoped path, paying one O(m)
// filter sweep plus the induced re-solve, as in the pre-forest sessions.
// A batch entry with no remaining occurrence is an error and leaves the
// live state unchanged.
func (s *Solver) RemoveEdges(batch []Edge) error {
	var start time.Time
	if s.rec != nil {
		start = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	inc, err := s.incReady()
	if err != nil {
		return err
	}
	if len(batch) == 0 {
		return nil
	}
	if inc.forest != nil {
		return s.removeEdgesForest(inc, batch, start)
	}
	n := inc.g.N
	need := make(map[int64]int, len(batch))
	for _, e := range batch {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return &EdgeRangeError{Edge: e, N: n}
		}
		need[e.CanonKey()]++
	}
	// Validation pass before any mutation: every batch entry must have an
	// occurrence left in the live multiset.
	remain := len(batch)
	for _, e := range inc.g.Edges {
		if k := e.CanonKey(); need[k] > 0 {
			need[k]--
			remain--
		}
	}
	if remain > 0 {
		return &MissingEdgeError{Count: remain}
	}
	for _, e := range batch {
		need[e.CanonKey()]++
	}

	// Removal sweep: filter the edge list in place, marking the root of
	// every removed non-loop edge dirty (both endpoints share a root — the
	// edge connected them until now).
	rec := s.rec
	rec.Reset()
	rec.Add(obs.CtrBatchEdges, int64(len(batch)))
	span := rec.Begin()
	e := s.casExec()
	cx := s.cx
	parent := inc.parent
	if s.pages != nil {
		// Deferred merge relabels must land before any deletion reshapes
		// components: the mirror's circles and labels are exact from here
		// through the batch (splits and region rebuilds keep them so).
		s.pages.flush(parent)
	}
	dirty := cx.Grab32(n)
	dirtyCount := 0
	kept := inc.g.Edges[:0]
	for _, ed := range inc.g.Edges {
		if k := ed.CanonKey(); need[k] > 0 {
			need[k]--
			if ed.U != ed.V {
				if r := par.Find(parent, ed.U); dirty[r] == 0 {
					dirty[r] = 1
					dirtyCount++
				}
			}
			continue
		}
		kept = append(kept, ed)
	}
	inc.g.Edges = kept
	inc.batch++
	if s.plan != nil && s.plan.G == inc.g {
		s.plan = nil // removal invalidates the delta chain; force a rebuild
	}
	rec.Add(obs.CtrDirtyComponents, int64(dirtyCount))
	if dirtyCount == 0 {
		cx.Release32(dirty)
		if rec != nil {
			rec.End(obs.PhaseExtract, span)
			s.lastTrace = incTraceFromRecorder(rec, "remove-edges", time.Since(start))
		}
		return nil
	}

	// Scoped re-solve: gather the vertices of the dirty components, build
	// the induced subgraph in compact ids, run CONNECTIVITY on it, and
	// splice the labels back.  Everything outside the dirty set is
	// untouched.
	par.Compress(e, parent)
	sc := cx.Inc()
	sc.Verts = sc.Verts[:0]
	vmap := cx.Grab32(n)
	for v := 0; v < n; v++ {
		if dirty[parent[v]] != 0 {
			vmap[v] = int32(len(sc.Verts)) + 1
			sc.Verts = append(sc.Verts, int32(v))
		}
	}
	sc.Sub = graph.InducedInto(inc.g, vmap, len(sc.Verts), sc.Sub)
	rec.Add(obs.CtrScopedVertices, int64(sc.Sub.N))
	rec.Add(obs.CtrScopedEdges, int64(sc.Sub.M()))
	span = rec.Lap(obs.PhaseExtract, span)
	var subLabels []int32
	var subComps int
	if frontierWorthwhile(sc.Sub) {
		// Mesh-like dirty region: the induced subgraph is exactly the set
		// of touched components, so seeding it (in full) into the frontier
		// engine is the scoped-repair instantiation of the frontier
		// machinery — per-round work proportional to the part of the
		// region still unsettled, instead of a full pipeline round over
		// all of it.  The transient CSR is built uncached, like the
		// sampling branch's.
		csr := graph.BuildCSROn(e, sc.Sub)
		subLabels, subComps = s.frontierLabelsInto(e, sc.Sub, csr, sc.SubLabels)
	} else if sampleWorthwhile(sc.Sub) {
		// A large dense dirty region re-labels faster through the
		// sampling fast path than through the charged FLS pipeline: the
		// induced subgraph's CSR is built once (uncached — the subgraph
		// is transient scratch) and most of its edges are eliminated by
		// the skip test.  Sparse or small regions keep the paper's
		// pipeline, which their re-solve cost is dominated by anyway.
		csr := graph.BuildCSROn(e, sc.Sub)
		subLabels, subComps = s.sampleLabelsInto(e, sc.Sub, csr, sc.SubLabels)
	} else {
		s.m.Reset()
		r := core.ConnectivityScoped(cx, sc.Sub, s.seed^(inc.batch*0x9e3779b97f4a7c15), sc.SubLabels)
		subLabels, subComps = r.Labels, r.NumComponents
	}
	sc.SubLabels = subLabels
	// The re-solve recorded its own phases (the sampling kernels' or the
	// FLS pipeline's); the scoped span pools them into the headline number.
	span = rec.Lap(obs.PhaseScoped, span)
	par.SpliceLabels(e, parent, sc.Verts, subLabels)
	if s.pages != nil {
		s.pages.rebuildRegion(parent, sc.Verts)
	}
	rec.End(obs.PhaseSplice, span)
	inc.ncomp += subComps - dirtyCount
	// The Compress above flattened the whole forest and the splice wrote a
	// flat two-level region; queries need no further flatten.
	inc.needsCompress = false
	cx.Release32(vmap)
	cx.Release32(dirty)
	if rec != nil {
		s.lastTrace = incTraceFromRecorder(rec, "remove-edges", time.Since(start))
	}
	return nil
}

// removeEdgesForest is the deletion path with spanning-forest maintenance
// (inc.forest non-nil): validation is O(|batch|) through the DynForest key
// index instead of the legacy O(m) sweep, and each deletion is handled by
// dynconn.Tracker.Delete — O(1) for non-forest occurrences, a bounded
// replacement search for forest ones.  Components whose search blew the
// budget collect into the same scoped re-solve the legacy path runs,
// followed by a forest-flag rebuild of the re-solved region.
func (s *Solver) removeEdgesForest(inc *incSession, batch []Edge, start time.Time) error {
	n := inc.g.N
	fr := inc.forest
	// Validation before any mutation: range check, then per-key occurrence
	// counts against the live multiset (the key index answers "at least c
	// copies?" in O(c)).
	need := make(map[int64]int, len(batch))
	for _, e := range batch {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return &EdgeRangeError{Edge: e, N: n}
		}
		need[e.CanonKey()]++
	}
	missing := 0
	for k, c := range need {
		if have := fr.DF.CountKey(k, c); have < c {
			missing += c - have
		}
	}
	if missing > 0 {
		return &MissingEdgeError{Count: missing}
	}

	rec := s.rec
	rec.Reset()
	rec.Add(obs.CtrBatchEdges, int64(len(batch)))
	span := rec.Begin()
	e := s.casExec()
	cx := s.cx
	parent := inc.parent
	if inc.needsCompress {
		// Flat-parent invariant: the searches read roots directly and the
		// split relabels write flat sides, so one flatten at entry (the one
		// the query path would pay anyway) keeps the whole batch flat.
		par.Compress(e, parent)
		inc.needsCompress = false
	}
	st := s.pages
	var moved []int32
	var movedPtr *[]int32
	if st != nil {
		// Deferred merge relabels land before any split can reshape a
		// pending loser's circle; with the mirror current, each split below
		// reports its moved side and updates the mirror in O(|moved|).
		st.flush(parent)
		movedPtr = &moved
	}
	dirty := cx.Grab32(n)
	dirtyCount := 0
	splits := 0
	fa, fb := s.frontierPair(n)
	span = rec.Lap(obs.PhaseExtract, span)
	for _, ed := range batch {
		dr := fr.DeleteCollect(parent, ed, fa, fb, func(root int32) bool { return dirty[root] != 0 }, movedPtr)
		rec.Add(obs.CtrReplaceScans, dr.Scanned)
		switch dr.Kind {
		case dynconn.DeleteNonForest:
			rec.Add(obs.CtrNonForestDeletes, 1)
		case dynconn.DeleteReplaced:
			rec.Add(obs.CtrForestDeletes, 1)
			rec.Add(obs.CtrReplacements, 1)
		case dynconn.DeleteSplit:
			rec.Add(obs.CtrForestDeletes, 1)
			rec.Add(obs.CtrSplits, 1)
			if st != nil {
				st.split(moved, dr.Root, dr.NewRoot)
			}
			inc.ncomp++
			splits++
		case dynconn.DeleteBudget:
			rec.Add(obs.CtrForestDeletes, 1)
			rec.Add(obs.CtrBudgetFallbacks, 1)
			if dirty[dr.Root] == 0 {
				dirty[dr.Root] = 1
				dirtyCount++
			}
		case dynconn.DeleteDirty:
			// The component is already awaiting the scoped re-solve; only
			// the occurrence was removed.
			rec.Add(obs.CtrForestDeletes, 1)
		}
	}
	span = rec.Lap(obs.PhaseReplace, span)
	inc.batch++
	if s.plan != nil && s.plan.G == inc.g {
		s.plan = nil // removal invalidates the delta chain; force a rebuild
	}
	rec.Add(obs.CtrDirtyComponents, int64(splits+dirtyCount))
	if dirtyCount == 0 {
		cx.Release32(dirty)
		if rec != nil {
			rec.End(obs.PhaseExtract, span)
			s.lastTrace = incTraceFromRecorder(rec, "remove-edges", time.Since(start))
		}
		return nil
	}

	// Budget-blown components: gather their vertices, re-solve the induced
	// subgraph, splice — the legacy scoped repair, scoped to exactly the
	// components the searches abandoned — then re-derive the region's
	// forest flags (the only state the scoped labels do not fix).
	sc := cx.Inc()
	sc.Verts = sc.Verts[:0]
	vmap := cx.Grab32(n)
	for v := 0; v < n; v++ {
		if dirty[parent[v]] != 0 {
			vmap[v] = int32(len(sc.Verts)) + 1
			sc.Verts = append(sc.Verts, int32(v))
		}
	}
	sc.Sub = graph.InducedInto(inc.g, vmap, len(sc.Verts), sc.Sub)
	rec.Add(obs.CtrScopedVertices, int64(sc.Sub.N))
	rec.Add(obs.CtrScopedEdges, int64(sc.Sub.M()))
	span = rec.Lap(obs.PhaseExtract, span)
	var subLabels []int32
	var subComps int
	if frontierWorthwhile(sc.Sub) {
		csr := graph.BuildCSROn(e, sc.Sub)
		subLabels, subComps = s.frontierLabelsInto(e, sc.Sub, csr, sc.SubLabels)
	} else if sampleWorthwhile(sc.Sub) {
		csr := graph.BuildCSROn(e, sc.Sub)
		subLabels, subComps = s.sampleLabelsInto(e, sc.Sub, csr, sc.SubLabels)
	} else {
		s.m.Reset()
		r := core.ConnectivityScoped(cx, sc.Sub, s.seed^(inc.batch*0x9e3779b97f4a7c15), sc.SubLabels)
		subLabels, subComps = r.Labels, r.NumComponents
	}
	sc.SubLabels = subLabels
	span = rec.Lap(obs.PhaseScoped, span)
	par.SpliceLabels(e, parent, sc.Verts, subLabels)
	if st != nil {
		st.rebuildRegion(parent, sc.Verts)
	}
	uf := cx.Grab32(len(sc.Verts))
	fr.RebuildRegion(sc.Verts, vmap, uf)
	cx.Release32(uf)
	rec.End(obs.PhaseSplice, span)
	inc.ncomp += subComps - dirtyCount
	// Entry Compress + flat splices/splits: queries need no further
	// flatten.
	inc.needsCompress = false
	cx.Release32(vmap)
	cx.Release32(dirty)
	if rec != nil {
		s.lastTrace = incTraceFromRecorder(rec, "remove-edges", time.Since(start))
	}
	return nil
}

// Components returns the live partition as a freshly allocated Result —
// the cheap re-query of the incremental session: no solve happens, only a
// flatten of the union-find forest (O(n) on the session's runtime, far
// below any from-scratch solve) and a copy of the labels.  NumComponents
// is maintained exactly across batches.  Result.Algorithm echoes
// Incremental; Steps/Work are zero (the kernels are uncharged serving
// helpers — charged costs accrue only inside RemoveEdges' scoped
// re-solves).  Use ComponentsInto to recycle the Result in a serving loop.
func (s *Solver) Components() (*Result, error) {
	res := &Result{}
	if err := s.ComponentsInto(res); err != nil {
		return nil, err
	}
	return res, nil
}

// ComponentsInto is Components writing into a caller-owned Result:
// res.Labels is reused when it has the capacity, making steady-state
// re-queries allocation-free.  All other fields are overwritten.
func (s *Solver) ComponentsInto(res *Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	inc, err := s.incReady()
	if err != nil {
		return err
	}
	n := inc.g.N
	if inc.needsCompress {
		par.Compress(s.casExec(), inc.parent)
		inc.needsCompress = false
	}
	dst := res.Labels
	if cap(dst) < n {
		dst = make([]int32, n)
	}
	dst = dst[:n]
	copy(dst, inc.parent)
	*res = Result{
		Labels:        dst,
		NumComponents: inc.ncomp,
		Algorithm:     Incremental,
		Backend:       s.opt.Backend,
		Procs:         s.procs,
		Breakdown:     res.Breakdown[:0],
	}
	return nil
}

// incReady reports the live session, erroring when there is none or the
// solver is closed (callers hold s.mu).  The errors are the taxonomy's
// sentinels — ErrSolverClosed and ErrNotAttached — so every incremental
// entry point fails in a form callers can dispatch on with errors.Is.
func (s *Solver) incReady() (*incSession, error) {
	if s.closed {
		return nil, ErrSolverClosed
	}
	if s.inc == nil {
		return nil, ErrNotAttached
	}
	return s.inc, nil
}
