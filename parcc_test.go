package parcc

import (
	"bytes"
	"testing"
)

func TestAllAlgorithmsAgree(t *testing.T) {
	g := UnionGraphs(Cycle(120), Grid(9, 11), RandomRegular(128, 4, 3), NewGraph(7))
	algos := []Algorithm{FLS, FLSKnownGap, LTZ, SV, RandomMate, LabelProp, LT, ParBFS, UnionFind, BFS}
	for _, a := range algos {
		res, err := ConnectedComponents(g, &Options{Algorithm: a, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if !Verify(g, res.Labels) {
			t.Errorf("%s: wrong partition", a)
		}
		if res.NumComponents != 10 { // 3 graphs + 7 isolated vertices
			t.Errorf("%s: %d components, want 10", a, res.NumComponents)
		}
		if res.Algorithm != a {
			t.Errorf("result echoes %q, want %q", res.Algorithm, a)
		}
	}
}

func TestDefaultOptions(t *testing.T) {
	g := Cycle(50)
	res, err := ConnectedComponents(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != FLS || res.NumComponents != 1 {
		t.Fatalf("default run: algo=%s comps=%d", res.Algorithm, res.NumComponents)
	}
	if res.Steps <= 0 || res.Work <= 0 {
		t.Error("accounting missing")
	}
}

func TestNilAndInvalidInputs(t *testing.T) {
	if _, err := ConnectedComponents(nil, nil); err == nil {
		t.Error("nil graph should error")
	}
	bad := NewGraph(2)
	bad.Edges = append(bad.Edges, Edge{U: 0, V: 9})
	if _, err := ConnectedComponents(bad, nil); err == nil {
		t.Error("invalid edge should error")
	}
	if _, err := ConnectedComponents(Cycle(4), &Options{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestSameComponentAndComponents(t *testing.T) {
	g := UnionGraphs(Path(4), Path(3))
	res, err := ConnectedComponents(g, &Options{Algorithm: BFS})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SameComponent(0, 3) || res.SameComponent(0, 4) {
		t.Error("SameComponent wrong")
	}
	comps := res.Components()
	if len(comps) != 2 || len(comps[0]) != 4 || len(comps[1]) != 3 {
		t.Errorf("Components = %v", comps)
	}
}

func TestSequentialDeterministic(t *testing.T) {
	g := GNM(300, 450, 7)
	run := func() *Result {
		res, err := ConnectedComponents(g, &Options{Sequential: true, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.Work != b.Work {
		t.Errorf("sequential runs differ: steps %d vs %d, work %d vs %d",
			a.Steps, b.Steps, a.Work, b.Work)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("sequential labels differ")
		}
	}
}

func TestGraphIO(t *testing.T) {
	g := UnionGraphs(Cycle(5), Path(4))
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != g.N || h.M() != g.M() {
		t.Fatal("round trip changed graph")
	}
}

func TestSpectralHelpers(t *testing.T) {
	if l := SpectralGap(Complete(8)); l < 1.0 || l > 1.3 {
		t.Errorf("K8 gap = %f", l)
	}
	if d := Diameter(Path(9)); d != 8 {
		t.Errorf("path diameter = %d", d)
	}
	if d := DiameterApprox(BinaryTree(31)); d != Diameter(BinaryTree(31)) {
		t.Errorf("tree approx diameter %d != exact", d)
	}
	gaps := ComponentSpectralGaps(UnionGraphs(Cycle(6), Cycle(8)))
	if len(gaps) != 2 {
		t.Errorf("expected 2 component gaps, got %v", gaps)
	}
}

func TestKnownGapB(t *testing.T) {
	g := RandomRegular(512, 6, 1)
	res, err := ConnectedComponents(g, &Options{Algorithm: FLSKnownGap, KnownGapB: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(g, res.Labels) || res.NumComponents != 1 {
		t.Error("known-gap solve wrong")
	}
}

func TestWorkersOption(t *testing.T) {
	g := GNM(2000, 4000, 1)
	for _, w := range []int{1, 2, 8} {
		res, err := ConnectedComponents(g, &Options{Workers: w, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !Verify(g, res.Labels) {
			t.Errorf("workers=%d: wrong partition", w)
		}
	}
}

func TestCertifyResult(t *testing.T) {
	g := UnionGraphs(Cycle(50), Grid(6, 7), NewGraph(3))
	res, err := ConnectedComponents(g, &Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Certify(g, res.Labels)
	if err != nil {
		t.Fatalf("labeling failed certification: %v", err)
	}
	if err := VerifyCertificate(g, c); err != nil {
		t.Fatal(err)
	}
	// a spanning forest has n - #components edges
	want := g.N - res.NumComponents
	if len(c.Forest) != want {
		t.Errorf("forest has %d edges, want %d", len(c.Forest), want)
	}
}
